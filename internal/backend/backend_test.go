package backend

import (
	"context"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/gemm"
	"winrs/internal/tensor"
	"winrs/internal/winnf"
)

// p3x3 is the workhorse geometry: winnf-supported square 3×3.
var p3x3 = conv.Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 5, PH: 1, PW: 1}

func TestDefaultRegistryOrder(t *testing.T) {
	want := []string{"winrs", "gemm", "direct", "fft", "winnf"}
	got := Default().Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		b, ok := Default().Get(name)
		if !ok || b.Name() != name {
			t.Errorf("Get(%q) = %v, %v", name, b, ok)
		}
	}
	if _, ok := Default().Get("nope"); ok {
		t.Error("Get of unknown backend succeeded")
	}
}

func TestNewRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate backend name did not panic")
		}
	}()
	NewRegistry(&gemmBackend{}, &gemmBackend{})
}

func TestSupportsEnvelope(t *testing.T) {
	reg := Default()
	cases := []struct {
		backend string
		p       conv.Params
		prec    Precision
		want    bool
	}{
		{"fft", p3x3, FP32, true},
		{"fft", p3x3, FP16, false}, // FFT has no binary16 path
		{"winnf", p3x3, FP32, true},
		{"winnf", p3x3, FP16, true}, // 3×3 FP16 is covered
		{"winnf", conv.Params{N: 1, IH: 14, IW: 16, FH: 5, FW: 5, IC: 2, OC: 3, PH: 2, PW: 2}, FP16, false}, // 5×5 FP16 is not
		{"winnf", conv.Params{N: 1, IH: 14, IW: 9, FH: 3, FW: 1, IC: 3, OC: 2}, FP32, false},                // non-square
		{"winnf", conv.Params{N: 1, IH: 16, IW: 18, FH: 7, FW: 7, IC: 2, OC: 2}, FP32, false},               // 7×7
		{"gemm", p3x3, FP16, true},
		{"direct", p3x3, FP16, true},
		{"winrs", p3x3, FP16, true},
	}
	for _, tc := range cases {
		b, ok := reg.Get(tc.backend)
		if !ok {
			t.Fatalf("backend %q missing", tc.backend)
		}
		if got := b.Supports(tc.p, tc.prec); got != tc.want {
			t.Errorf("%s.Supports(%v, %v) = %v, want %v", tc.backend, tc.p, tc.prec, got, tc.want)
		}
		// Invalid geometry is never supported.
		if b.Supports(conv.Params{}, tc.prec) {
			t.Errorf("%s.Supports(zero params) = true", tc.backend)
		}
	}
}

func TestEligibleFiltersByPrecision(t *testing.T) {
	reg := Default()
	fp32 := reg.Eligible(p3x3, FP32)
	if len(fp32) != 5 {
		t.Errorf("FP32 eligible on 3x3: %d backends, want 5", len(fp32))
	}
	fp16 := reg.Eligible(p3x3, FP16)
	for _, b := range fp16 {
		if b.Name() == "fft" {
			t.Error("fft eligible at FP16")
		}
	}
	if len(fp16) != 4 {
		t.Errorf("FP16 eligible on 3x3: %d backends, want 4", len(fp16))
	}
}

func TestWorkspaceBytes(t *testing.T) {
	reg := Default()
	get := func(name string) Backend {
		b, ok := reg.Get(name)
		if !ok {
			t.Fatalf("backend %q missing", name)
		}
		return b
	}
	if ws := get("direct").WorkspaceBytes(p3x3, FP32); ws != 0 {
		t.Errorf("direct workspace = %d, want 0", ws)
	}
	if ws, want := get("gemm").WorkspaceBytes(p3x3, FP32), gemm.Algo1Workspace(p3x3); ws != want {
		t.Errorf("gemm workspace = %d, want %d", ws, want)
	}
	full := get("winnf").WorkspaceBytes(p3x3, FP32)
	if want := winnf.Workspace(p3x3); full != want {
		t.Errorf("winnf FP32 workspace = %d, want %d", full, want)
	}
	if half := get("winnf").WorkspaceBytes(p3x3, FP16); half != full/2 {
		t.Errorf("winnf FP16 workspace = %d, want %d", half, full/2)
	}
	if ws := get("fft").WorkspaceBytes(p3x3, FP32); ws <= 0 {
		t.Errorf("fft workspace = %d, want > 0", ws)
	}
	// WinRS reports the paper's (Z−1)·|∇W| workspace — legitimately zero
	// on a tiny single-segment shape.
	cfg, err := core.Configure(p3x3)
	if err != nil {
		t.Fatal(err)
	}
	if ws, want := get("winrs").WorkspaceBytes(p3x3, FP32), cfg.WorkspaceBytes(); ws != want {
		t.Errorf("winrs workspace = %d, want %d", ws, want)
	}
}

func TestOperandShapeChecks(t *testing.T) {
	x, dy := diffLayer(t, 1, p3x3)
	wrong := tensor.NewFloat32(tensor.Shape{N: 1, H: 1, W: 1, C: 1})
	for _, b := range Default().Backends() {
		if err := b.ExecuteCtx(context.Background(), p3x3, x, dy, wrong); err == nil {
			t.Errorf("%s: bad dst shape accepted", b.Name())
		}
		if err := b.ExecuteCtx(context.Background(), p3x3, dy, x, tensor.NewFloat32(p3x3.DWShape())); err == nil {
			t.Errorf("%s: swapped operands accepted", b.Name())
		}
	}
}

func TestExecuteHalfUnsupported(t *testing.T) {
	x, dy := diffLayer(t, 2, p3x3)
	xh, dyh := x.ToHalf(), dy.ToHalf()
	dst := tensor.NewFloat32(p3x3.DWShape())
	b, _ := Default().Get("fft")
	if err := b.ExecuteHalfCtx(context.Background(), p3x3, xh, dyh, dst); err == nil {
		t.Error("fft ExecuteHalfCtx succeeded; want no-FP16 error")
	}
}

func TestExecuteCancelledContext(t *testing.T) {
	x, dy := diffLayer(t, 3, p3x3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, b := range Default().Backends() {
		dst := tensor.NewFloat32(p3x3.DWShape())
		if err := b.ExecuteCtx(ctx, p3x3, x, dy, dst); err == nil {
			t.Errorf("%s: cancelled context accepted", b.Name())
		}
	}
}
