package backend

import (
	"math"

	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/fftconv"
	"winrs/internal/winnf"
)

// Cost is the analytic work estimate the dispatcher scores. It is a host
// (CPU) analogue of the gpusim launch accounting in internal/perfmodel:
// the same executed-FLOPs and intermediate-traffic quantities, but with
// sustained-efficiency derates calibrated for this repository's Go
// kernels instead of GPU pipelines, plus the parallel grain count of the
// dominant stage (the quantity that limits how many pool workers the
// backend can actually feed — e.g. direct parallelizes only over O_C).
type Cost struct {
	// FLOPs is the executed floating-point work (after any complexity
	// reduction; including redundant work such as FFT plane padding).
	FLOPs float64
	// Bytes is the memory traffic of materialized intermediates plus one
	// compulsory pass over the operands.
	Bytes float64
	// Eff is the sustained fraction of per-proc scalar peak in (0, 1].
	Eff float64
	// Grains is the number of independently schedulable work items of the
	// dominant stage; effective parallelism is min(procs, Grains).
	Grains int
}

// Host calibration of the prediction. The absolute scale only has to be
// roughly right — dispatch compares backends against each other, and the
// optional measurement refinement settles close calls — but the relative
// derates below are fit against measured ns/op of the five backends on
// the bench grid of cmd/winrs-bench (see TestDispatchWithinBest).
const (
	// hostFLOPSPerProc is the scalar FMA peak of one worker running the
	// tightest loop in this repository (the register-blocked EWM).
	hostFLOPSPerProc = 2.0e9
	// hostBytesPerSec is the streaming bandwidth charged to intermediate
	// traffic (shared across workers, hence not scaled by procs).
	hostBytesPerSec = 6.0e9
)

// PredictNs turns a Cost into a predicted wall time in nanoseconds for
// the given worker count: a roofline-style sum of the compute term at
// min(procs, Grains)-way parallelism and the serialisable traffic term.
func PredictNs(c Cost, procs int) float64 {
	if procs < 1 {
		procs = 1
	}
	eff := c.Eff
	if eff <= 0 {
		eff = 0.5
	}
	par := float64(procs)
	if c.Grains > 0 && float64(c.Grains) < par {
		par = float64(c.Grains)
	}
	tComp := c.FLOPs / (hostFLOPSPerProc * eff * par)
	tMem := c.Bytes / hostBytesPerSec
	return (tComp + tMem) * 1e9
}

// operandBytes32 is one compulsory pass over X, ∇Y and ∇W in FP32.
func operandBytes32(p conv.Params) float64 { return float64(p.DataBytes32()) }

// --- per-backend Cost methods ---

func (b *winrsBackend) Cost(p conv.Params, prec Precision) Cost {
	cfg, err := b.config(p, prec)
	if err != nil {
		return Cost{FLOPs: math.Inf(1), Eff: 1, Grains: 1}
	}
	var flops float64
	var grains int
	for _, s := range cfg.Segments {
		// Per-group plan segments: each of the G per-group passes reduces
		// O_C/G × I_C/G channels, so the total across passes is O_C × I_C/G.
		segElems := float64(s.Rows()) * float64(s.Cols()) * float64(p.N)
		direct := 2 * segElems * float64(p.FH) * float64(p.FW) *
			float64(p.OC) * float64(p.ICG())
		flops += direct / s.K.Accel() * 1.10
		grains += s.Rows() * (s.Cols() / s.K.R) * p.N
	}
	if p.G() > 1 && core.InterleavedGroups() {
		// The interleaved dispatch fuses all G groups into one sched batch,
		// so every group's units are live in the same grain pool (up to the
		// staging-ring pipelining limit, which host procs never reach).
		// Under the sequential forcing grains stay per pass — the
		// parallelism live at any instant between the G barriers.
		grains *= p.G()
	}
	// Z × the full ∇W: the per-group buckets are 1/G of it and are swept
	// once per each of the G passes.
	dwBytes := float64(p.DWShape().Elems()) * 4
	bytes := operandBytes32(p) + float64(cfg.Z())*dwBytes
	// Larger transforms spend more non-GEMM instructions (the footnote-3
	// trade-off), mirrored from perfmodel's alpha→eff map at host scale.
	// Recalibrated for the fused kernel tier: the 8-row register blocks and
	// the fused transform+EWM pass lift the small-α kernels ~20% (measured
	// BenchmarkExecuteWinRS forced block4 vs auto), and the two-column
	// transform pass lifts α = 16 (transform-bound) as well.
	eff := map[int]float64{2: 0.66, 4: 0.65, 8: 0.60, 16: 0.40}[cfg.Pair.Fast.Alpha]
	if eff == 0 {
		eff = 0.60
	}
	if prec == FP16 {
		// Software binary16 around the EWM: the decoded-operand residency
		// and the arithmetic rounding decode narrowed the gap to fp32
		// (measured ~0.58× its throughput on the bench grid).
		eff *= 0.60
	}
	if p.G() > 1 && p.ICG() == 1 {
		// Depthwise regime: the dw1 EWM panel drops the channel-reduction
		// loop, but its single-column accumulators sustain a lower fraction
		// of FMA peak than the register blocks (measured on the 56×56
		// G = I_C winrs-bench rows).
		eff *= 0.85
	}
	return Cost{FLOPs: flops, Bytes: bytes, Eff: eff, Grains: grains}
}

func (gemmBackend) Cost(p conv.Params, prec Precision) Cost {
	// Grouped layers run one Algo1 per group; n shrinks to the per-group
	// reduction F_H·F_W·(I_C/G), and m = O_C totals the G sequential
	// passes (O_C/G rows each).
	m := float64(p.OC)
	n := float64(p.FH) * float64(p.FW) * float64(p.ICG())
	k := float64(p.N) * float64(p.OH()) * float64(p.OW())
	flops := 2 * m * n * k
	// The im2col chunk is written once and re-read by the GEMM, per group.
	bytes := operandBytes32(p) + 2*k*n*4*float64(p.G())
	eff := 0.55
	grains := (p.OCG() + 31) / 32 // one pass's M-block parallelism
	if prec == FP16 {
		// Algo1Half runs a scalar table-FMA per multiply-accumulate —
		// an order of magnitude below the float32 GEMM loop.
		eff = 0.05
		grains = p.OCG()
	}
	return Cost{FLOPs: flops, Bytes: bytes, Eff: eff, Grains: grains}
}

func (directBackend) Cost(p conv.Params, prec Precision) Cost {
	eff := 0.40
	if prec == FP16 {
		eff = 0.35 // plus one bulk decode of both operands
	}
	return Cost{
		FLOPs:  float64(p.FLOPs()),
		Bytes:  operandBytes32(p),
		Eff:    eff,
		Grains: p.OC,
	}
}

func (fftBackend) Cost(p conv.Params, prec Precision) Cost {
	lh, lw := fftconv.PlaneSize(p)
	plane := float64(lh * lw)
	logTerm := math.Log2(plane)
	xPlanes := float64(p.N) * float64(p.IC)
	yPlanes := float64(p.N) * float64(p.OC)
	wPlanes := float64(p.OC) * float64(p.IC)
	// 5·L·log2 L per transformed plane, 8 real FLOPs per complex FMA of
	// the batched EWM.
	flops := 5*plane*logTerm*(xPlanes+yPlanes+wPlanes) +
		8*plane*float64(p.N)*wPlanes
	bytes := operandBytes32(p) + 2*(xPlanes+yPlanes+wPlanes)*plane*16
	grains := int(math.Max(xPlanes+yPlanes, wPlanes))
	// complex128 scalar butterflies with strided access.
	return Cost{FLOPs: flops, Bytes: bytes, Eff: 0.20, Grains: grains}
}

func (winnfBackend) Cost(p conv.Params, prec Precision) Cost {
	if !winnf.Supported(p) {
		return Cost{FLOPs: math.Inf(1), Eff: 1, Grains: 1}
	}
	alpha := float64(p.FH + winnf.TileR - 1)
	a2 := alpha * alpha
	th := float64((p.OH() + winnf.TileR - 1) / winnf.TileR)
	tw := float64((p.OW() + winnf.TileR - 1) / winnf.TileR)
	nt := float64(p.N) * th * tw
	oc, ic := float64(p.OC), float64(p.IC)
	// EWM at reduced complexity plus the three float64 transform stages.
	flops := float64(p.FLOPs())/winnf.Accel(p) +
		2*a2*(nt*oc*winnf.TileR+nt*ic*alpha+oc*ic*float64(p.FH))
	bytes := operandBytes32(p) + 2*float64(winnf.Workspace(p))
	eff := 0.30       // per-tile float64 transforms with fresh slices
	grains := int(a2) // the EWM stage: one grain per transform element
	if prec == FP16 {
		eff = 0.06 // binary16 table-FMA EWM
	}
	return Cost{FLOPs: flops, Bytes: bytes, Eff: eff, Grains: grains}
}
