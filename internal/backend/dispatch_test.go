package backend

import (
	"context"
	"fmt"
	"testing"

	"winrs/internal/autotune"
	"winrs/internal/conv"
)

// benchGridShapes mirrors cmd/winrs-bench's fixed regression grid — the
// shapes the acceptance criterion ("dispatch within 10% of the best
// measured backend") is judged on.
var benchGridShapes = []conv.Params{
	{N: 1, IH: 32, IW: 32, FH: 3, FW: 3, IC: 8, OC: 8, PH: 1, PW: 1},
	{N: 2, IH: 16, IW: 16, FH: 5, FW: 5, IC: 4, OC: 4},
	{N: 1, IH: 24, IW: 24, FH: 3, FW: 3, IC: 16, OC: 16, PH: 1, PW: 1},
}

func TestPredictNsScalesWithGrains(t *testing.T) {
	serial := Cost{FLOPs: 1e9, Eff: 0.5, Grains: 1}
	if p1, p4 := PredictNs(serial, 1), PredictNs(serial, 4); p1 != p4 {
		t.Errorf("Grains=1: PredictNs(1)=%g != PredictNs(4)=%g", p1, p4)
	}
	wide := Cost{FLOPs: 1e9, Eff: 0.5, Grains: 64}
	if p1, p4 := PredictNs(wide, 1), PredictNs(wide, 4); p4 >= p1 {
		t.Errorf("Grains=64: PredictNs(4)=%g not below PredictNs(1)=%g", p4, p1)
	}
	withMem := Cost{FLOPs: 1e9, Bytes: 6e9, Eff: 0.5, Grains: 64}
	if d := PredictNs(withMem, 4) - PredictNs(wide, 4); d < 0.9e9 {
		t.Errorf("traffic term added %g ns, want ~1e9", d)
	}
}

func TestRankingSortedAndEligible(t *testing.T) {
	reg := Default()
	for _, p := range benchGridShapes {
		cands := reg.Ranking(p, FP32, 4)
		if len(cands) == 0 {
			t.Fatalf("no candidates for %v", p)
		}
		for i := 1; i < len(cands); i++ {
			if cands[i].PredictedNs < cands[i-1].PredictedNs {
				t.Errorf("%v: ranking not sorted: %v", p, cands)
			}
		}
		for _, c := range cands {
			b, ok := reg.Get(c.Name)
			if !ok || !b.Supports(p, FP32) {
				t.Errorf("%v: ineligible candidate %q", p, c.Name)
			}
		}
	}
	// FP16 rankings must exclude the FFT backend.
	for _, c := range reg.Ranking(p3x3, FP16, 4) {
		if c.Name == "fft" {
			t.Error("fft ranked at FP16")
		}
	}
}

func TestDispatchPredictionOnly(t *testing.T) {
	d, err := Default().Dispatch(p3x3, FP32, Options{Measure: false})
	if err != nil {
		t.Fatal(err)
	}
	if d.Measured {
		t.Error("Measured set without refinement")
	}
	if len(d.Candidates) == 0 || d.Backend != d.Candidates[0].Name {
		t.Errorf("prediction-only choice %q != best-predicted %v", d.Backend, d.Candidates)
	}
	for _, c := range d.Candidates {
		if c.MeasuredNs != 0 {
			t.Errorf("candidate %q measured without refinement", c.Name)
		}
	}
}

func TestDispatchMeasuredRefinement(t *testing.T) {
	d, err := Default().Dispatch(p3x3, FP32, Options{Measure: true, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Measured {
		t.Fatal("refinement did not run on a tiny shape")
	}
	measured := 0
	bestNs := 0.0
	for _, c := range d.Candidates {
		if c.MeasuredNs > 0 {
			measured++
			if bestNs == 0 || c.MeasuredNs < bestNs {
				bestNs = c.MeasuredNs
			}
		}
	}
	if measured != 2 {
		t.Errorf("measured %d candidates, want 2", measured)
	}
	for _, c := range d.Candidates {
		if c.Name == d.Backend && c.MeasuredNs != bestNs {
			t.Errorf("chose %q at %g ns, but best measured is %g", d.Backend, c.MeasuredNs, bestNs)
		}
	}
}

func TestDispatchMeasureBound(t *testing.T) {
	d, err := Default().Dispatch(p3x3, FP32, Options{Measure: true, MaxMeasureFLOPs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Measured {
		t.Error("refinement ran above the FLOP bound")
	}
}

func TestDispatchInvalidParams(t *testing.T) {
	if _, err := Default().Dispatch(conv.Params{}, FP32, Options{}); err == nil {
		t.Error("invalid geometry dispatched")
	}
}

// TestDispatchWithinBest is the acceptance check behind the cost-model
// calibration: on every bench-grid shape, the dispatched backend's own
// measured time must be close to the fastest of ALL eligible backends
// (each timed best-of-3 here). The 10% criterion is asserted at 2× to
// absorb shared-CI timer noise, with retries so a single descheduled run
// cannot flake the suite; the tight 10% figure is recorded per row in the
// winrs-bench JSON where measurement is min-of-batches.
func TestDispatchWithinBest(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	reg := Default()
	for _, p := range benchGridShapes {
		p := p
		t.Run(shapeName(p), func(t *testing.T) {
			const attempts = 3
			var lastMsg string
			for a := 0; a < attempts; a++ {
				best, times := measureEligible(t, reg, p)
				d, err := reg.Dispatch(p, FP32, Options{Measure: true})
				if err != nil {
					t.Fatal(err)
				}
				chosen := times[d.Backend]
				if chosen <= 2.0*best {
					return
				}
				lastMsg = formatGap(d.Backend, chosen, best, times)
			}
			t.Error(lastMsg)
		})
	}
}

func shapeName(p conv.Params) string {
	return fmt.Sprintf("N%d_I%dx%d_F%dx%d_C%dx%d", p.N, p.IH, p.IW, p.FH, p.FW, p.IC, p.OC)
}

// measureEligible times every eligible backend best-of-3 on synthetic
// operands and returns the fastest time plus the per-backend map.
func measureEligible(t *testing.T, reg *Registry, p conv.Params) (best float64, times map[string]float64) {
	t.Helper()
	x, dy, dst, _, _ := synthOperands(p, FP32)
	times = map[string]float64{}
	for _, b := range reg.Eligible(p, FP32) {
		var min float64
		for i := 0; i < 3; i++ {
			var err error
			d := autotune.MeasureOnce(func() {
				err = b.ExecuteCtx(context.Background(), p, x, dy, dst)
			})
			if err != nil {
				t.Fatalf("%s: %v", b.Name(), err)
			}
			if ns := float64(d.Nanoseconds()); min == 0 || ns < min {
				min = ns
			}
		}
		times[b.Name()] = min
		if best == 0 || min < best {
			best = min
		}
	}
	return best, times
}

func formatGap(chosen string, chosenNs, bestNs float64, times map[string]float64) string {
	msg := fmt.Sprintf("dispatched %s is %.2fx the best measured backend:", chosen, chosenNs/bestNs)
	for name, ns := range times {
		msg += fmt.Sprintf(" %s=%.0fus", name, ns/1000)
	}
	return msg
}
