package backend

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"

	"winrs/internal/autotune"
	"winrs/internal/conv"
	"winrs/internal/tensor"
)

// Candidate is one eligible backend's dispatch score.
type Candidate struct {
	// Name is the backend identifier.
	Name string `json:"name"`
	// WorkspaceBytes is the backend's scratch for this geometry.
	WorkspaceBytes int64 `json:"workspace_bytes"`
	// PredictedNs is the cost model's wall-time estimate.
	PredictedNs float64 `json:"predicted_ns"`
	// MeasuredNs is the one-shot refinement measurement; 0 when the
	// candidate was not measured.
	MeasuredNs float64 `json:"measured_ns,omitempty"`
}

// Decision is a completed dispatch: the chosen backend plus the scored
// candidate list (sorted by predicted time) that produced it. It is
// memoized alongside the plan in the serve cache and recorded per grid
// row in the bench JSON.
type Decision struct {
	// Backend is the chosen backend name.
	Backend string `json:"backend"`
	// Measured reports whether the choice was refined by measurement.
	Measured bool `json:"measured"`
	// Candidates lists every eligible backend, best-predicted first.
	Candidates []Candidate `json:"candidates"`
}

// Options tunes Dispatch.
type Options struct {
	// Procs is the worker count the prediction assumes; ≤0 means the
	// current GOMAXPROCS.
	Procs int
	// Measure enables the one-shot refinement: the top-K predicted
	// candidates each run once on synthetic operands and the fastest
	// measured wins. Without it the prediction alone decides.
	Measure bool
	// TopK is how many leading candidates the refinement measures
	// (default 2 — the ISSUE's "refine the top-2").
	TopK int
	// MaxMeasureFLOPs bounds the refinement: geometries whose direct
	// FLOPs exceed it skip measurement (a one-shot run would cost more
	// than a mispredicted choice). ≤0 means the 2 GFLOP default.
	MaxMeasureFLOPs float64
}

// defaultMaxMeasureFLOPs keeps a refinement run in the tens of
// milliseconds on the calibrated host: at the ~1 GFLOP/s effective rate of
// the slowest eligible backend, 1e8 direct-conv FLOPs is ~100 ms worst
// case per measured candidate — acceptable once per plan-cache miss,
// while every bench-grid shape (≤ a few MFLOPs) stays far below the bound.
const defaultMaxMeasureFLOPs = 1e8

// Dispatch scores every eligible backend for (p, prec) and returns the
// decision. With o.Measure set and the geometry under the measurement
// bound, the top-K predicted candidates are each executed once on
// synthetic operands (timed through internal/autotune) and the fastest
// measured one is chosen; otherwise the best-predicted candidate wins.
func (r *Registry) Dispatch(p conv.Params, prec Precision, o Options) (Decision, error) {
	if err := p.Validate(); err != nil {
		return Decision{}, err
	}
	procs := o.Procs
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	cands := r.Ranking(p, prec, procs)
	if len(cands) == 0 {
		return Decision{}, fmt.Errorf("backend: no backend supports %v at %v", p, prec)
	}
	d := Decision{Backend: cands[0].Name, Candidates: cands}

	bound := o.MaxMeasureFLOPs
	if bound <= 0 {
		bound = defaultMaxMeasureFLOPs
	}
	if !o.Measure || float64(p.FLOPs()) > bound {
		return d, nil
	}
	topK := o.TopK
	if topK <= 0 {
		topK = 2
	}
	if topK > len(cands) {
		topK = len(cands)
	}
	if topK < 2 {
		return d, nil // nothing to compare
	}

	x, dy, dst, xh, dyh := synthOperands(p, prec)
	best := -1
	for i := 0; i < topK; i++ {
		b, _ := r.Get(cands[i].Name)
		var err error
		dur := autotune.MeasureOnce(func() {
			if prec == FP16 {
				err = b.ExecuteHalfCtx(context.Background(), p, xh, dyh, dst)
			} else {
				err = b.ExecuteCtx(context.Background(), p, x, dy, dst)
			}
		})
		if err != nil {
			continue // an unmeasurable candidate just keeps its prediction
		}
		cands[i].MeasuredNs = float64(dur.Nanoseconds())
		if best < 0 || cands[i].MeasuredNs < cands[best].MeasuredNs {
			best = i
		}
	}
	if best >= 0 {
		d.Backend = cands[best].Name
		d.Measured = true
	}
	return d, nil
}

// synthOperands builds deterministic pseudo-random operands for the
// refinement runs (seeded, so repeated dispatches of one geometry time
// identical work).
func synthOperands(p conv.Params, prec Precision) (x, dy, dst *tensor.Float32, xh, dyh *tensor.Half) {
	rng := rand.New(rand.NewSource(42))
	x = tensor.NewFloat32(p.XShape())
	dy = tensor.NewFloat32(p.DYShape())
	dst = tensor.NewFloat32(p.DWShape())
	x.FillUniform(rng, -1, 1)
	dy.FillUniform(rng, -1, 1)
	if prec == FP16 {
		xh, dyh = x.ToHalf(), dy.ToHalf()
	}
	return
}
