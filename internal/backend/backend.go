// Package backend unifies the repository's five backward-filter
// convolution algorithms — WinRS (internal/core), explicit im2col+GEMM
// (internal/gemm), direct summation (internal/conv), FFT correlation
// (internal/fftconv) and non-fused Winograd (internal/winnf) — behind one
// executor interface, and provides the cost-model-driven dispatcher that
// picks the predicted-fastest backend per (geometry, precision,
// GOMAXPROCS), optionally refined by a bounded one-shot measurement.
//
// Every Backend computes the same operation to within the eq.(7)-style
// differential tolerance (pinned by this package's cross-backend sweep
// against the FP64 direct oracle), so dispatch can only ever change how
// fast the gradient arrives, never what it is. The serve plan cache
// memoizes the dispatch decision per plan key, making the choice a
// once-per-geometry cost rather than a per-request one.
package backend

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"winrs/internal/conv"
	"winrs/internal/obs"
	"winrs/internal/tensor"
)

// Precision selects the operand encoding of an execution.
type Precision uint8

const (
	// FP32 is IEEE-754 binary32 operands with FP32 accumulation.
	FP32 Precision = iota
	// FP16 is binary16 operands (the emulated Tensor-Core path); the
	// result is always FP32.
	FP16
)

// String names the precision as it appears on the serve wire ("f32"/"f16").
func (pr Precision) String() string {
	if pr == FP16 {
		return "f16"
	}
	return "f32"
}

// Backend is one backward-filter convolution algorithm. Implementations
// are stateless or internally synchronized: a Backend is safe for
// concurrent use. ExecuteCtx/ExecuteHalfCtx write the gradient into dst
// (shape p.DWShape(); prior contents are overwritten, not accumulated)
// and record their wall time into the winrs_backend_execute_seconds
// histogram (obs.Default), so /metrics shows per-backend latency the same
// way it shows per-stage WinRS timings.
//
// Cancellation is cooperative and backend-dependent: WinRS aborts between
// chunk claims; the baseline backends check ctx only at the boundaries
// (their inner loops are not cancellation-aware), mirroring the
// forward/backward-data serve paths.
type Backend interface {
	// Name is the stable dispatch identifier ("winrs", "gemm", "direct",
	// "fft", "winnf") used in plan keys, request headers, metrics labels
	// and bench JSON.
	Name() string
	// Supports reports whether the backend covers the layer geometry at
	// the precision (e.g. winnf only handles square 3×3/5×5, FFT is FP32
	// only).
	Supports(p conv.Params, prec Precision) bool
	// WorkspaceBytes reports the scratch the backend materializes beyond
	// operands and result — the paper's Table 2 axis, surfaced per
	// geometry by winrs-info -dispatch.
	WorkspaceBytes(p conv.Params, prec Precision) int64
	// Cost returns the analytic work estimate the dispatcher scores
	// (executed FLOPs, DRAM-class traffic, sustained-efficiency derate,
	// parallelizable grain count).
	Cost(p conv.Params, prec Precision) Cost
	// ExecuteCtx computes ∇W from FP32 operands into dst.
	ExecuteCtx(ctx context.Context, p conv.Params, x, dy *tensor.Float32, dst *tensor.Float32) error
	// ExecuteHalfCtx computes ∇W from binary16 operands into the FP32 dst.
	// It errors for backends without FP16 support (Supports(p, FP16) is
	// the guard).
	ExecuteHalfCtx(ctx context.Context, p conv.Params, x, dy *tensor.Half, dst *tensor.Float32) error
}

// execHist returns the per-backend execution-latency histogram in the
// process-wide registry (registration is idempotent).
func execHist(name string) *obs.Histogram {
	return obs.Default.Histogram("winrs_backend_execute_seconds",
		"Backward-filter execution latency per backend.",
		[]float64{0.5, 0.99}, obs.Label{Key: "backend", Value: name})
}

// observe wraps one backend execution with boundary cancellation checks
// and the obs latency recording shared by every adapter.
func observe(ctx context.Context, name string, f func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	start := time.Now()
	if err := f(); err != nil {
		return err
	}
	execHist(name).Observe(time.Since(start))
	return ctx.Err()
}

// checkOperands validates geometry and shapes once, so adapters can hand
// operands straight to implementations that panic on mismatch.
func checkOperands(p conv.Params, xs, dys, dsts tensor.Shape) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if xs != p.XShape() || dys != p.DYShape() {
		return fmt.Errorf("backend: operand shapes %v, %v; want %v, %v",
			xs, dys, p.XShape(), p.DYShape())
	}
	if dsts != p.DWShape() {
		return fmt.Errorf("backend: dst shape %v, want %v", dsts, p.DWShape())
	}
	return nil
}

// Registry is an ordered set of backends. The order is the tie-break for
// equal dispatch scores (earlier wins), with WinRS first — the paper's
// algorithm stays the default wherever the model sees a dead heat.
type Registry struct {
	list   []Backend
	byName map[string]Backend
}

// NewRegistry builds a registry from the given backends (order preserved;
// duplicate names panic — that is a wiring error).
func NewRegistry(bs ...Backend) *Registry {
	r := &Registry{byName: make(map[string]Backend, len(bs))}
	for _, b := range bs {
		if _, dup := r.byName[b.Name()]; dup {
			panic("backend: duplicate backend " + b.Name())
		}
		r.list = append(r.list, b)
		r.byName[b.Name()] = b
	}
	return r
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry holding all five algorithms,
// in canonical order: winrs, gemm, direct, fft, winnf.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewRegistry(
			newWinRSBackend(),
			&gemmBackend{},
			&directBackend{},
			&fftBackend{},
			&winnfBackend{},
		)
	})
	return defaultReg
}

// Get returns the named backend.
func (r *Registry) Get(name string) (Backend, bool) {
	b, ok := r.byName[name]
	return b, ok
}

// Names lists the registered backend names in registry order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.list))
	for i, b := range r.list {
		out[i] = b.Name()
	}
	return out
}

// Backends returns the registered backends in registry order.
func (r *Registry) Backends() []Backend { return append([]Backend(nil), r.list...) }

// Eligible returns the backends supporting (p, prec), in registry order.
func (r *Registry) Eligible(p conv.Params, prec Precision) []Backend {
	var out []Backend
	for _, b := range r.list {
		if b.Supports(p, prec) {
			out = append(out, b)
		}
	}
	return out
}

// Ranking scores every eligible backend and returns candidates sorted by
// predicted time (ascending; ties keep registry order). It is Dispatch
// without the refinement step — what winrs-info -dispatch prints.
func (r *Registry) Ranking(p conv.Params, prec Precision, procs int) []Candidate {
	var out []Candidate
	for _, b := range r.Eligible(p, prec) {
		out = append(out, Candidate{
			Name:           b.Name(),
			WorkspaceBytes: b.WorkspaceBytes(p, prec),
			PredictedNs:    PredictNs(b.Cost(p, prec), procs),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].PredictedNs < out[j].PredictedNs })
	return out
}
