package gpusim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeviceSpecsMatchPaperObservations(t *testing.T) {
	// Observation 2: 3090 → 4090 raises V_comp by ~132% and V_band by ~8%.
	compGain := RTX4090.FP32TFLOPS/RTX3090.FP32TFLOPS - 1
	bandGain := RTX4090.BandwidthGBs/RTX3090.BandwidthGBs - 1
	if compGain < 1.2 || compGain > 1.45 {
		t.Errorf("3090→4090 compute gain %v, paper says ~132%%", compGain)
	}
	if bandGain < 0.05 || bandGain > 0.12 {
		t.Errorf("3090→4090 bandwidth gain %v, paper says ~8%%", bandGain)
	}
	// FP32 CUDA → FP16 Tensor on 4090: ~297% more compute.
	tensorGain := RTX4090.FP16TFLOPS/RTX4090.FP32TFLOPS - 1
	if tensorGain < 2.7 || tensorGain > 3.3 {
		t.Errorf("4090 tensor gain %v, paper says ~297%%", tensorGain)
	}
	// A5000 has a lower compute/bandwidth ratio than the 4090 (§6.2).
	r5000 := RTXA5000.FP16TFLOPS / RTXA5000.BandwidthGBs
	r4090 := RTX4090.FP16TFLOPS / RTX4090.BandwidthGBs
	if r5000 >= r4090 {
		t.Errorf("A5000 comp/band ratio %v should be below 4090's %v", r5000, r4090)
	}
	// L40S is comparable to the 4090 in both (§6.2).
	if math.Abs(L40S.FP16TFLOPS/RTX4090.FP16TFLOPS-1) > 0.2 {
		t.Error("L40S FP16 peak should be within 20% of the 4090")
	}
}

func TestEfficiencyTailEffect(t *testing.T) {
	d := RTX4090
	high := Launch{Blocks: 100000, Intensity: 100} // needs 1 block/SM
	if eff := d.Efficiency(high); eff < 0.95 {
		t.Errorf("huge grid efficiency %v, want ~1", eff)
	}
	// The Figure 2 situation: 8 blocks on 128 SMs.
	tiny := Launch{Blocks: 8, Intensity: 100}
	if eff := d.Efficiency(tiny); math.Abs(eff-8.0/128.0) > 1e-9 {
		t.Errorf("8-block efficiency %v, want %v", eff, 8.0/128.0)
	}
	if d.Efficiency(Launch{Blocks: 0}) != 0 {
		t.Error("zero blocks should have zero efficiency")
	}
}

func TestEfficiencyLatencyHiding(t *testing.T) {
	d := RTX4090
	// Low intensity needs more resident blocks: same block count, lower
	// efficiency.
	lo := d.Efficiency(Launch{Blocks: 256, Intensity: 4})
	hi := d.Efficiency(Launch{Blocks: 256, Intensity: 100})
	if lo >= hi {
		t.Errorf("low-intensity efficiency %v should trail high-intensity %v", lo, hi)
	}
	// With enough blocks both saturate.
	loSat := d.Efficiency(Launch{Blocks: 128 * 6 * 4, Intensity: 4})
	if loSat < 0.95 {
		t.Errorf("saturated low-intensity efficiency %v, want ~1", loSat)
	}
}

// Property: efficiency is monotone non-decreasing in block count up to the
// first full wave and always within (0, 1].
func TestEfficiencyMonotoneAndBounded(t *testing.T) {
	d := RTX3090
	f := func(b1, b2 uint16, intens uint8) bool {
		i := float64(intens%64) + 1
		x, y := int(b1%2000)+1, int(b2%2000)+1
		if x > y {
			x, y = y, x
		}
		ex := d.Efficiency(Launch{Blocks: x, Intensity: i})
		ey := d.Efficiency(Launch{Blocks: y, Intensity: i})
		needed := neededBlocksPerSM(i)
		slots := float64(d.NSM) * needed
		if ex <= 0 || ex > 1 || ey <= 0 || ey > 1 {
			return false
		}
		if float64(y) <= slots && ex > ey+1e-12 {
			return false // must be monotone below one wave
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLaunchTimeRoofline(t *testing.T) {
	d := RTX4090
	// Pure compute-bound: 82.6e12 FLOPs at full efficiency ≈ 1s/0.85.
	cb := Launch{Blocks: 1 << 20, FLOPs: 82.6e12, Bytes: 1, Intensity: 100}
	tc := d.LaunchTime(cb)
	if math.Abs(tc-1/0.85) > 0.02 {
		t.Errorf("compute-bound time %v, want ~%v", tc, 1/0.85)
	}
	// Pure memory-bound: 1008e9 bytes ≈ 1s.
	mb := Launch{Blocks: 1 << 20, FLOPs: 1, Bytes: 1008e9, Intensity: 100}
	tm := d.LaunchTime(mb)
	if math.Abs(tm-1) > 0.02 {
		t.Errorf("memory-bound time %v, want ~1", tm)
	}
	// Tensor-core launch is faster for the same FLOPs.
	ct := d.LaunchTime(Launch{Blocks: 1 << 20, FLOPs: 82.6e12, Bytes: 1,
		Intensity: 100, Tensor: true})
	if ct >= tc {
		t.Errorf("tensor time %v should beat CUDA-core %v", ct, tc)
	}
	// Launch overhead floors tiny kernels.
	if lt := d.LaunchTime(Launch{Blocks: 1, FLOPs: 1, Bytes: 1, Intensity: 10}); lt < 4e-6 {
		t.Errorf("tiny launch %v below overhead floor", lt)
	}
	if d.LaunchTime(Launch{}) != 0 {
		t.Error("empty launch should cost nothing")
	}
}

// The mechanism WinRS exploits: splitting the same work into Z× more blocks
// speeds up a starved launch nearly Z× on the simulator.
func TestSegmentationRecoversStarvation(t *testing.T) {
	d := RTX4090
	flops, bytes := 1e12, 1e9
	starved := Plan{Launches: []Launch{{Blocks: 8, FLOPs: flops, Bytes: bytes, Intensity: 6.4}}}
	segmented := Plan{Launches: []Launch{
		{Blocks: 8 * 16, FLOPs: flops, Bytes: bytes, Intensity: 6.4},
		{Name: "reduce", Blocks: 128, FLOPs: 1e7, Bytes: 3e7, Intensity: 1},
	}}
	t0 := d.Time(starved)
	t1 := d.Time(segmented)
	if t1 >= t0/4 {
		t.Errorf("segmentation speedup only %vx, expected >4x", t0/t1)
	}
}

// Non-fused pipelines pay for intermediate traffic: same useful FLOPs, but
// extra memory-bound launches make them slower on a compute-rich device.
func TestFusedBeatsNonFusedOnComputeRichDevice(t *testing.T) {
	d := RTX4090
	flops := 5e11
	data := 4e8
	fused := Plan{Launches: []Launch{
		{Blocks: 4096, FLOPs: flops, Bytes: data, Intensity: 6.4},
	}}
	nonFused := Plan{Launches: []Launch{
		{Name: "FT", Blocks: 4096, FLOPs: flops * 0.05, Bytes: data * 2, Intensity: 1},
		{Name: "IT", Blocks: 4096, FLOPs: flops * 0.05, Bytes: data * 2, Intensity: 1},
		{Name: "EWM", Blocks: 4096, FLOPs: flops * 0.85, Bytes: data * 4, Intensity: 20},
		{Name: "OT", Blocks: 4096, FLOPs: flops * 0.05, Bytes: data * 2, Intensity: 1},
	}}
	if d.Time(fused) >= d.Time(nonFused) {
		t.Errorf("fused %v should beat non-fused %v", d.Time(fused), d.Time(nonFused))
	}
}

func TestPlanAggregates(t *testing.T) {
	p := Plan{
		Algorithm: "x",
		Launches: []Launch{
			{Blocks: 1, FLOPs: 10, Bytes: 100},
			{Blocks: 1, FLOPs: 20, Bytes: 300},
		},
		WorkspaceBytes: 42,
	}
	if p.TotalFLOPs() != 30 || p.TotalBytes() != 400 {
		t.Errorf("aggregates = %v FLOPs, %v bytes", p.TotalFLOPs(), p.TotalBytes())
	}
	if p.String() == "" {
		t.Error("String should format")
	}
}

func TestThroughputTFLOPS(t *testing.T) {
	if got := ThroughputTFLOPS(2e12, 1); got != 2 {
		t.Errorf("ThroughputTFLOPS = %v, want 2", got)
	}
	if ThroughputTFLOPS(1, 0) != 0 {
		t.Error("zero time should yield zero throughput")
	}
	// Winograd effect: direct-equivalent FLOPs at reduced executed work can
	// exceed the peak.
	d := RTX4090
	l := Launch{Blocks: 1 << 20, FLOPs: 82.6e12 / 2.25, Bytes: 1, Intensity: 100}
	tput := ThroughputTFLOPS(int64(82.6e12), d.Time(Plan{Launches: []Launch{l}}))
	if tput < d.FP32TFLOPS {
		t.Errorf("Winograd-reduced plan throughput %v should exceed peak %v",
			tput, d.FP32TFLOPS)
	}
}
