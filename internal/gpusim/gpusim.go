// Package gpusim is a wave-based GPU execution-time simulator.
//
// The paper evaluates WinRS on four NVIDIA GPUs; this package replaces that
// hardware with a cost model implementing the mechanisms the paper's
// analysis rests on (eq. 8 and §6.2):
//
//   - a roofline per kernel launch: T = max(C_time/V_comp, C_data/V_band),
//   - block-level parallelism with wave quantization and a tail effect —
//     launching 8 blocks on a 128-SM device uses 1/16 of it, the
//     small-output starvation of Figure 2,
//   - latency hiding that improves with blocks-per-SM and with the kernel's
//     computation intensity (eq. 4), the effect Algorithm 1 balances
//     against partitioning overhead,
//   - per-launch fixed overhead, which penalizes many-kernel (non-fused)
//     pipelines.
//
// Device numbers are public spec-sheet values; the model targets relative
// shape (who wins, where crossovers fall), not absolute nanoseconds.
package gpusim

import (
	"fmt"
	"math"
)

// Device models one GPU.
type Device struct {
	Name string
	// NSM is the number of streaming multiprocessors.
	NSM int
	// FP32TFLOPS is the CUDA-core FP32 peak; FP16TFLOPS the Tensor-Core
	// FP16 (dense) peak.
	FP32TFLOPS, FP16TFLOPS float64
	// BandwidthGBs is the DRAM bandwidth in GB/s.
	BandwidthGBs float64
	// LaunchOverheadUS is the fixed cost of one kernel launch in
	// microseconds.
	LaunchOverheadUS float64
}

// The evaluation devices (paper §6): spec-sheet SM counts, peak FLOPS and
// bandwidths.
var (
	RTX4090 = Device{Name: "RTX 4090", NSM: 128, FP32TFLOPS: 82.6,
		FP16TFLOPS: 330.3, BandwidthGBs: 1008, LaunchOverheadUS: 4}
	RTX3090 = Device{Name: "RTX 3090", NSM: 82, FP32TFLOPS: 35.6,
		FP16TFLOPS: 142.3, BandwidthGBs: 936, LaunchOverheadUS: 4}
	L40S = Device{Name: "L40S", NSM: 142, FP32TFLOPS: 91.6,
		FP16TFLOPS: 366.0, BandwidthGBs: 864, LaunchOverheadUS: 4}
	RTXA5000 = Device{Name: "RTX A5000", NSM: 64, FP32TFLOPS: 27.8,
		FP16TFLOPS: 111.1, BandwidthGBs: 768, LaunchOverheadUS: 4}
)

// Devices lists the four evaluation GPUs.
var Devices = []Device{RTX4090, RTX3090, L40S, RTXA5000}

// Launch describes one kernel launch of an algorithm's execution plan.
type Launch struct {
	// Name identifies the kernel (for reports).
	Name string
	// Blocks is the grid size.
	Blocks int
	// FLOPs is the arithmetic the kernel executes (not the direct-conv
	// equivalent — Winograd kernels execute fewer).
	FLOPs float64
	// Bytes is the kernel's DRAM traffic (reads + writes).
	Bytes float64
	// Intensity is the kernel's on-chip computation intensity (eq. 4),
	// governing how many resident blocks per SM it needs to hide latency.
	Intensity float64
	// Tensor selects the Tensor-Core peak instead of the CUDA-core peak.
	Tensor bool
	// Eff derates the selected peak for the kernel's achievable fraction
	// (instruction mix, bank conflicts); 0 means the default 0.85.
	Eff float64
}

// rho0 calibrates how much intensity substitutes for occupancy: a kernel
// with intensity ρ needs about rho0/ρ resident blocks per SM for full
// latency hiding (clamped to [1, 6]).
const rho0 = 24.0

// neededBlocksPerSM returns the resident blocks per SM required to hide
// most latency at the given computation intensity.
func neededBlocksPerSM(intensity float64) float64 {
	if intensity <= 0 {
		return 6
	}
	n := rho0 / intensity
	return math.Min(6, math.Max(1, n))
}

// Efficiency returns the fraction of peak compute the launch can sustain
// given its grid size: the product of tail/wave quantization and latency
// hiding. It is 1 when blocks fill every SM with enough residency.
func (d Device) Efficiency(l Launch) float64 {
	if l.Blocks <= 0 {
		return 0
	}
	needed := neededBlocksPerSM(l.Intensity)
	slots := float64(d.NSM) * needed
	b := float64(l.Blocks)
	if b >= slots {
		// Full-throughput waves with a quantization tail. The min guards
		// against float rounding pushing an exact multiple above 1.
		waves := math.Ceil(b / slots)
		return math.Min(1, b/(waves*slots))
	}
	// Under-filled device: throughput proportional to filled slots.
	return b / slots
}

// LaunchTime returns the modelled execution time of one kernel launch in
// seconds: roofline of derated compute vs DRAM bandwidth, plus fixed launch
// overhead.
func (d Device) LaunchTime(l Launch) float64 {
	if l.Blocks <= 0 {
		return 0
	}
	peak := d.FP32TFLOPS
	if l.Tensor {
		peak = d.FP16TFLOPS
	}
	eff := l.Eff
	if eff == 0 {
		eff = 0.85
	}
	compute := peak * 1e12 * eff * d.Efficiency(l)
	tComp := 0.0
	if l.FLOPs > 0 {
		tComp = l.FLOPs / compute
	}
	tMem := l.Bytes / (d.BandwidthGBs * 1e9)
	return math.Max(tComp, tMem) + d.LaunchOverheadUS*1e-6
}

// Plan is an algorithm's full execution: an ordered kernel sequence plus
// the global-memory workspace it requires.
type Plan struct {
	Algorithm      string
	Launches       []Launch
	WorkspaceBytes int64
}

// Time returns the modelled wall time of the plan in seconds (kernels run
// back to back, as cuDNN's non-fused pipelines do).
func (d Device) Time(p Plan) float64 {
	var t float64
	for _, l := range p.Launches {
		t += d.LaunchTime(l)
	}
	return t
}

// ThroughputTFLOPS converts a modelled time into the paper's throughput
// metric: direct-convolution-equivalent FLOPs divided by time. Algorithms
// with reduced time complexity can exceed the device peak by design (§6.2).
func ThroughputTFLOPS(directFLOPs int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(directFLOPs) / seconds / 1e12
}

// String summarizes the plan.
func (p Plan) String() string {
	return fmt.Sprintf("%s: %d launches, workspace %d B", p.Algorithm, len(p.Launches), p.WorkspaceBytes)
}

// TotalBytes returns the plan's aggregate DRAM traffic.
func (p Plan) TotalBytes() float64 {
	var b float64
	for _, l := range p.Launches {
		b += l.Bytes
	}
	return b
}

// TotalFLOPs returns the plan's aggregate executed FLOPs.
func (p Plan) TotalFLOPs() float64 {
	var f float64
	for _, l := range p.Launches {
		f += l.FLOPs
	}
	return f
}
