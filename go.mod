module winrs

go 1.22
