package winrs_test

import (
	"fmt"

	"winrs"
)

// The minimal flow: define the layer, fill the operands, get gradients.
func ExampleBackwardFilter() {
	p := winrs.Params{N: 1, IH: 8, IW: 8, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}
	x := winrs.NewTensor(p.XShape())
	dy := winrs.NewTensor(p.DYShape())
	// A delta input and unit gradient make the result hand-checkable:
	// ∇W[oc,fh,fw,ic] counts how often X's single 1 aligns with each tap.
	x.Set(0, 4, 4, 0, 1)
	dy.Fill(1)

	dw, err := winrs.BackwardFilter(p, x, dy)
	if err != nil {
		panic(err)
	}
	// Every filter tap sees the delta exactly once (Winograd arithmetic
	// reproduces it to float32 precision).
	fmt.Println(dw.Shape)
	fmt.Printf("%.3f %.3f %.3f\n",
		dw.At(0, 0, 0, 0), dw.At(0, 2, 2, 0), dw.At(1, 1, 1, 1))
	// Output:
	// 2:3:3:2
	// 1.000 1.000 0.000
}

// Plans are reusable and report what the configuration adaptation chose.
func ExampleNewPlan() {
	p := winrs.Params{N: 32, IH: 224, IW: 224, FH: 3, FW: 3, IC: 64, OC: 64,
		PH: 1, PW: 1}
	plan, err := winrs.NewPlan(p)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.KernelPair())
	fmt.Println(plan.Segments() > 1, plan.WorkspaceBytes() > 0)
	// Output:
	// Omega8(3,6)+Omega4(3,2)
	// true true
}

// The forward pass runs on the same fused Winograd kernels.
func ExampleForward() {
	p := winrs.Params{N: 1, IH: 4, IW: 4, FH: 3, FW: 3, IC: 1, OC: 1, PH: 1, PW: 1}
	x := winrs.NewTensor(p.XShape())
	w := winrs.NewTensor(p.DWShape())
	x.Fill(1)
	w.Set(0, 1, 1, 0, 2) // identity-times-two filter

	y, err := winrs.Forward(p, x, w)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.3f %.3f\n", y.At(0, 0, 0, 0), y.At(0, 2, 2, 0))
	// Output:
	// 2.000 2.000
}
