// Package winrs is the public API of the WinRS library: a fast,
// memory-efficient and flexible backward-filter convolution (BFC) based on
// reduce-split fused 1-D Winograd kernels, reproducing the ICPP 2025 paper
// "WinRS: Accelerate Winograd Backward-Filter Convolution with Tiny
// Workspace".
//
// BFC computes filter gradients ∇W from input feature maps X and output
// gradients ∇Y:
//
//	∇W[oc,fh,fw,ic] = Σ_{n,oh,ow} X[n, oh+fh-pH, ow+fw-pW, ic]·∇Y[n,oh,ow,oc]
//
// All tensors are NHWC. The minimal use is:
//
//	p := winrs.Params{N: 32, IH: 56, IW: 56, FH: 3, FW: 3, IC: 64, OC: 64, PH: 1, PW: 1}
//	dw, err := winrs.BackwardFilter(p, x, dy)
//
// For repeated gradients over the same layer geometry, build a Plan once
// and execute it per step:
//
//	plan, err := winrs.NewPlan(p)
//	dw := plan.Execute(x, dy)
//
// The FP16 path (Plan.ExecuteHalf) emulates the paper's Tensor-Core
// kernels: mixed-precision transforms, binary16 storage of transformed
// tiles, FP32 accumulation, and eq. (7) scaling matrices for the α = 16
// transforms.
package winrs

import (
	"fmt"

	"winrs/internal/conv"
	"winrs/internal/core"
	"winrs/internal/serve"
	"winrs/internal/tensor"
)

// Params describes one convolutional layer in the paper's notation
// (stride 1, symmetric zero padding). It is an alias of the internal
// parameter type so the whole module shares one geometry definition.
type Params = conv.Params

// Shape is an N×H×W×C tensor extent.
type Shape = tensor.Shape

// Tensor is a dense NHWC float32 tensor.
type Tensor = tensor.Float32

// HalfTensor is a dense NHWC binary16 tensor for the FP16 path.
type HalfTensor = tensor.Half

// NewTensor allocates a zeroed float32 tensor.
func NewTensor(s Shape) *Tensor { return tensor.NewFloat32(s) }

// NewHalfTensor allocates a zeroed binary16 tensor.
func NewHalfTensor(s Shape) *HalfTensor { return tensor.NewHalf(s) }

// Hardware describes the device properties WinRS's configuration
// adaptation targets (Algorithm 1 scales the segment count with the SM
// count).
type Hardware = core.Hardware

// Plan is an adapted, reusable WinRS execution plan for one layer
// geometry: the fastest kernel pair, the segment partition and the bucket
// workspace size are all fixed at construction. A Plan is immutable and
// safe for concurrent Execute calls from multiple goroutines; each call
// borrows a private bucket arena from the plan's workspace pool.
type Plan struct {
	cfg   *core.Config
	entry *serve.Entry // plan-cache entry carrying the workspace pool
}

// defaultPlans is the process-wide plan cache behind NewPlan and the
// one-shot wrappers: configuration adaptation (§4) runs once per layer
// geometry and the bucket workspace is pooled per plan, so repeated
// one-shot calls behave like a hand-managed Plan.
var defaultPlans = serve.NewPlanCache(256)

// PlanCacheStats reports the process-wide plan cache's cumulative hits and
// misses (a hit means configuration adaptation was skipped).
func PlanCacheStats() (hits, misses uint64) { return defaultPlans.Stats() }

// PlanOption customizes NewPlan.
type PlanOption func(*planOpts)

type planOpts struct {
	hw       *Hardware
	fp16     bool
	segments int
}

// WithHardware targets a specific device model instead of the default
// (128 SMs, the paper's RTX 4090).
func WithHardware(hw Hardware) PlanOption {
	return func(o *planOpts) { o.hw = &hw }
}

// WithFP16 selects the emulated Tensor-Core path; restrict kernels to the
// six FP16-ported variants where possible.
func WithFP16() PlanOption { return func(o *planOpts) { o.fp16 = true } }

// WithSegments forces the segment count Z, bypassing the adaptive
// Algorithm 1. Intended for experiments and ablations.
func WithSegments(z int) PlanOption { return func(o *planOpts) { o.segments = z } }

// NewPlan runs WinRS configuration adaptation (§4 of the paper: kernel-pair
// selection, segment-count estimation, segment-shape calculation) and
// returns a reusable plan. Plans are cached process-wide by (geometry,
// precision, hardware, forced segments): a repeated NewPlan for the same
// layer returns the already-adapted plan without re-running §4.
func NewPlan(p Params, opts ...PlanOption) (*Plan, error) {
	var o planOpts
	for _, f := range opts {
		f(&o)
	}
	key := serve.PlanKey{Params: p, FP16: o.fp16, Segments: o.segments}
	if o.hw != nil {
		key.NSM = o.hw.NSM
	}
	e, _, err := defaultPlans.Get(key)
	if err != nil {
		return nil, err
	}
	return &Plan{cfg: e.Cfg, entry: e}, nil
}

// Segments returns the segment count Z the plan realized.
func (pl *Plan) Segments() int { return pl.cfg.Z() }

// WorkspaceBytes returns the bucket workspace the plan allocates per
// execution: (Z−1) × sizeof(∇W), the paper's "tiny workspace".
func (pl *Plan) WorkspaceBytes() int64 { return pl.cfg.WorkspaceBytes() }

// WHatCacheBytes returns the footprint of the transformed-∇Y cache the
// execution fills once per call and reuses across all units of a segment.
// Bounded by (max α/r)·sizeof(∇Y) regardless of segment count; see
// core.Config.WHatCacheBytes for the exact accounting.
func (pl *Plan) WHatCacheBytes() int64 { return pl.cfg.WHatCacheBytes() }

// KernelPair describes the selected fastest kernel pair in Ω-notation.
func (pl *Plan) KernelPair() string { return pl.cfg.Pair.String() }

// Execute computes ∇W in FP32. x must have shape N×I_H×I_W×I_C and dy
// N×O_H×O_W×O_C; the result is a freshly-allocated O_C×F_H×F_W×I_C tensor
// owned by the caller. The bucket workspace comes from the plan's pool, so
// steady-state calls do not re-allocate it; concurrent calls are safe and
// each borrow their own arena.
func (pl *Plan) Execute(x, dy *Tensor) *Tensor {
	if pl.entry == nil {
		return core.Execute(pl.cfg, x, dy)
	}
	ws := pl.entry.AcquireWorkspace()
	defer pl.entry.ReleaseWorkspace(ws)
	return core.ExecuteIn(pl.cfg, ws, x, dy, nil)
}

// ExecuteHalf computes ∇W on the emulated FP16 Tensor-Core path. The
// result is FP32 (accumulators and bucket reduction stay FP32, per the
// paper's accuracy design). Like Execute, it reuses the plan's pooled
// workspace and is safe for concurrent use.
func (pl *Plan) ExecuteHalf(x, dy *HalfTensor) *Tensor {
	if pl.entry == nil {
		return core.ExecuteHalf(pl.cfg, x, dy)
	}
	ws := pl.entry.AcquireWorkspace()
	defer pl.entry.ReleaseWorkspace(ws)
	return core.ExecuteHalfIn(pl.cfg, ws, x, dy, nil)
}

// BackwardFilter is the one-shot convenience wrapper: it configures a plan
// for p (cached process-wide, so repeated calls on the same geometry skip
// configuration adaptation) and computes ∇W in FP32. When O_W is too small
// for any registered Winograd kernel, the plan transparently uses a direct-
// convolution unit for the residual columns, so small outputs still work;
// an error is returned only for invalid parameters or geometries no
// execution path covers.
func BackwardFilter(p Params, x, dy *Tensor, opts ...PlanOption) (*Tensor, error) {
	plan, err := NewPlan(p, opts...)
	if err != nil {
		return nil, err
	}
	return plan.Execute(x, dy), nil
}

// BackwardFilterHalf is the one-shot FP16 path.
func BackwardFilterHalf(p Params, x, dy *HalfTensor, opts ...PlanOption) (*Tensor, error) {
	// Clone before appending: appending to the caller's variadic slice in
	// place would clobber its backing array when it has spare capacity.
	opts = append(append([]PlanOption(nil), opts...), WithFP16())
	plan, err := NewPlan(p, opts...)
	if err != nil {
		return nil, err
	}
	return plan.ExecuteHalf(x, dy), nil
}

// MARE computes the paper's accuracy metric (mean absolute relative error)
// of a float32 result against a float64 ground truth.
func MARE(approx *Tensor, exact *tensor.Float64) float64 {
	return tensor.MARE(approx, exact)
}

// Reference computes the float64 direct-convolution ground truth for
// validation.
func Reference(p Params, x, dy *Tensor) *tensor.Float64 {
	return conv.BackwardFilterDirect64(p, x.ToFloat64(), dy.ToFloat64())
}

// --- Extensions beyond the paper's evaluation (its §8 roadmap) ---

// Quantizer is a reduced-precision storage format for the generic
// quantized execution path (BF16 / FP8 / INT8 — the formats the paper
// names as FP16's successors).
type Quantizer = core.Quantizer

// The provided storage formats.
var (
	// BF16 is bfloat16: float32 exponent range, 8-bit mantissa.
	BF16 = core.QuantBF16
	// FP8E4M3 is OCP FP8 with 3 mantissa bits (max 448).
	FP8E4M3 = core.QuantFP8E4M3
	// FP8E5M2 is OCP FP8 with 2 mantissa bits (max 57344).
	FP8E5M2 = core.QuantFP8E5M2
)

// Int8 returns a symmetric INT8 quantizer saturating at ±absmax.
func Int8(absmax float32) Quantizer { return core.QuantInt8(absmax) }

// ExecuteQuantized computes ∇W with operands and transformed tiles stored
// in the given format and FP32 accumulation — the generalization of the
// FP16 Tensor-Core path.
func (pl *Plan) ExecuteQuantized(x, dy *Tensor, q Quantizer) *Tensor {
	return core.ExecuteQuantized(pl.cfg, x, dy, q)
}

// Forward computes the forward convolution Y = X ⊛ W with fused 1-D
// Winograd kernels (the paper's "WinRS can support FC" claim); W is shaped
// O_C×F_H×F_W×I_C.
func Forward(p Params, x, w *Tensor) (*Tensor, error) {
	return core.Forward(p, x, w)
}

// BackwardData computes the data gradient ∇X from ∇Y and W via the forward
// kernel on the flipped filter (BDC support).
func BackwardData(p Params, dy, w *Tensor) (*Tensor, error) {
	return core.BackwardData(p, dy, w)
}

// Params3D describes a volumetric convolutional layer (NDHWC) for the N-D
// extension of §3 Level 2.
type Params3D = conv.Params3D

// Tensor5 is a dense NDHWC float32 tensor.
type Tensor5 = tensor.Float325

// NewTensor5 allocates a zeroed 5-D tensor.
func NewTensor5(s tensor.Shape5) *Tensor5 { return tensor.NewFloat325(s) }

// BackwardFilter3D computes volumetric filter gradients with the N-D
// reduce-split pipeline: depth and height flatten into 1-D filters, the
// width axis carries the F(n,r) kernels, and both spatial padding axes are
// clipped. The FP16 path is not implemented for volumetric layers:
// passing WithFP16 returns an error rather than silently computing FP32.
func BackwardFilter3D(p Params3D, x, dy *Tensor5, opts ...PlanOption) (*Tensor5, error) {
	var o planOpts
	for _, f := range opts {
		f(&o)
	}
	if o.fp16 {
		return nil, fmt.Errorf("winrs: WithFP16 is not supported for BackwardFilter3D (FP32 only)")
	}
	var coreOpts []core.Option
	if o.hw != nil {
		coreOpts = append(coreOpts, core.WithHardware(*o.hw))
	}
	if o.segments > 0 {
		coreOpts = append(coreOpts, core.WithSegments(o.segments))
	}
	return core.BackwardFilter3D(p, x, dy, coreOpts...)
}

// StridedParams describes a strided convolutional layer (downsampling
// convs, patchify stems).
type StridedParams = conv.StridedParams

// ForwardStrided computes a strided forward convolution as a phase sum of
// stride-1 fused-Winograd passes.
func ForwardStrided(p StridedParams, x, w *Tensor) (*Tensor, error) {
	return core.ForwardStrided(p, x, w)
}

// BackwardDataStrided computes the input gradient of a strided convolution
// via per-phase stride-1 data gradients.
func BackwardDataStrided(p StridedParams, dy, w *Tensor) (*Tensor, error) {
	return core.BackwardDataStrided(p, dy, w)
}

// BackwardFilterStrided computes filter gradients for strided convolutions
// by phase decimation: each (stride-phase) sub-problem runs the full
// stride-1 WinRS pipeline and the results interleave into ∇W. The FP16
// path is not implemented for strided layers: passing WithFP16 returns an
// error rather than silently computing FP32.
func BackwardFilterStrided(p StridedParams, x, dy *Tensor, opts ...PlanOption) (*Tensor, error) {
	var o planOpts
	for _, f := range opts {
		f(&o)
	}
	if o.fp16 {
		return nil, fmt.Errorf("winrs: WithFP16 is not supported for BackwardFilterStrided (FP32 only)")
	}
	var coreOpts []core.Option
	if o.hw != nil {
		coreOpts = append(coreOpts, core.WithHardware(*o.hw))
	}
	if o.segments > 0 {
		coreOpts = append(coreOpts, core.WithSegments(o.segments))
	}
	return core.BackwardFilterStrided(p, x, dy, coreOpts...)
}
