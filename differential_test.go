package winrs

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"winrs/internal/conv"
	"winrs/internal/gemm"
	"winrs/internal/tensor"
)

// Differential sweep: WinRS (FP32 and FP16, across segmentations) against
// the two classical baselines — im2col+GEMM (cuDNN algo1's shape) and
// direct convolution — over a grid of filter sizes, paddings, channel
// counts and non-power-of-two geometries, including the r=1 and tiny-O_W
// edge shapes that exercise the fallback kernel pairs.
//
// Tolerances derive from the paper's eq. (7) error model: one gradient
// element accumulates L = N·O_H·O_W products, so with inputs in [0,1) the
// worst-case absolute error of a rounded path is about κ·L·ε, where ε is
// the unit roundoff (2⁻²⁴ FP32, 2⁻¹¹ FP16) and κ absorbs the Winograd
// transform amplification and the bucket reduction. The width axis is the
// Winograd-transformed one, and the transform's conditioning degrades
// roughly geometrically in F_W, so κ doubles per filter-width step beyond
// 3 (floor 16). Calibrated against measured errors with 2–8× headroom —
// tight enough that a broken transform, which is orders of magnitude out,
// still trips it.
const (
	diffEps32 = 5.96e-8 // 2^-24
	diffEps16 = 4.88e-4 // 2^-11
)

func diffKappa(p Params) float64 {
	k := 16.0
	for r := p.FW; r > 3; r-- {
		k *= 2
	}
	return k
}

type diffCase struct {
	name string
	p    Params
	segs []int // forced segment counts; 0 = adaptive
}

var diffCases = []diffCase{
	{"3x3_pad1", Params{N: 1, IH: 12, IW: 12, FH: 3, FW: 3, IC: 3, OC: 5, PH: 1, PW: 1}, []int{0, 1, 2, 4}},
	{"3x3_batched", Params{N: 3, IH: 10, IW: 10, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1}, []int{0, 2}},
	{"5x5_pad2", Params{N: 2, IH: 14, IW: 16, FH: 5, FW: 5, IC: 2, OC: 3, PH: 2, PW: 2}, []int{0, 2}},
	{"7x7", Params{N: 1, IH: 16, IW: 18, FH: 7, FW: 7, IC: 2, OC: 2}, []int{0}},
	{"1x3_row_filter", Params{N: 1, IH: 6, IW: 14, FH: 1, FW: 3, IC: 4, OC: 4}, []int{0, 1}},
	{"3x1_col_filter", Params{N: 1, IH: 14, IW: 9, FH: 3, FW: 1, IC: 3, OC: 2}, []int{0}},
	{"1x1_pointwise", Params{N: 2, IH: 8, IW: 11, FH: 1, FW: 1, IC: 3, OC: 4}, []int{0}},
	{"nonpow2_channels", Params{N: 1, IH: 13, IW: 17, FH: 3, FW: 3, IC: 5, OC: 7, PH: 1, PW: 1}, []int{0, 3}},
	{"tiny_ow", Params{N: 2, IH: 7, IW: 5, FH: 3, FW: 3, IC: 2, OC: 2}, []int{0}},
	{"wide_row", Params{N: 1, IH: 4, IW: 50, FH: 3, FW: 3, IC: 2, OC: 2, PW: 1}, []int{0, 2}},
}

func diffLayer(t *testing.T, seed int64, p Params) (*Tensor, *Tensor, *tensor.Float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := NewTensor(p.XShape())
	dy := NewTensor(p.DYShape())
	x.FillUniform(rng, 0, 1)
	dy.FillUniform(rng, 0, 1)
	return x, dy, conv.BackwardFilterDirect64(p, x.ToFloat64(), dy.ToFloat64())
}

// maxAbsErr64 returns max |got - want| against the FP64 reference.
func maxAbsErr64(got *Tensor, want *tensor.Float64) float64 {
	m := 0.0
	for i := range want.Data {
		if d := math.Abs(float64(got.Data[i]) - want.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// maxAbsDiff32 returns max |a - b| between two FP32 results.
func maxAbsDiff32(a, b *Tensor) float64 {
	m := 0.0
	for i := range a.Data {
		if d := math.Abs(float64(a.Data[i] - b.Data[i])); d > m {
			m = d
		}
	}
	return m
}

func accLen(p Params) float64 { return float64(p.N * p.OH() * p.OW()) }

func TestDifferentialFP32(t *testing.T) {
	for i, tc := range diffCases {
		t.Run(tc.name, func(t *testing.T) {
			x, dy, ref := diffLayer(t, int64(100+i), tc.p)
			bound := diffKappa(tc.p) * accLen(tc.p) * diffEps32

			// Both classical baselines must sit inside the same bound —
			// this anchors the bound itself before WinRS is judged by it.
			direct := gemm.Algo0(tc.p, x, dy)
			if e := maxAbsErr64(direct, ref); e > bound {
				t.Fatalf("direct baseline err %.3g exceeds bound %.3g", e, bound)
			}
			im2col := gemm.Algo1(tc.p, x, dy)
			if e := maxAbsErr64(im2col, ref); e > bound {
				t.Fatalf("im2col+GEMM baseline err %.3g exceeds bound %.3g", e, bound)
			}

			for _, z := range tc.segs {
				z := z
				t.Run(fmt.Sprintf("Z%d", z), func(t *testing.T) {
					opts := []PlanOption{}
					if z > 0 {
						opts = append(opts, WithSegments(z))
					}
					got, err := BackwardFilter(tc.p, x, dy, opts...)
					if err != nil {
						t.Fatalf("BackwardFilter: %v", err)
					}
					if e := maxAbsErr64(got, ref); e > bound {
						t.Errorf("WinRS vs FP64 reference: err %.3g exceeds eq.(7) bound %.3g", e, bound)
					}
					// Cross-check against both FP32 baselines: two rounded
					// paths can each deviate by `bound` in opposite directions.
					if e := maxAbsDiff32(got, im2col); e > 2*bound {
						t.Errorf("WinRS vs im2col+GEMM: diff %.3g exceeds %.3g", e, 2*bound)
					}
					if e := maxAbsDiff32(got, direct); e > 2*bound {
						t.Errorf("WinRS vs direct: diff %.3g exceeds %.3g", e, 2*bound)
					}
				})
			}
		})
	}
}

func TestDifferentialFP16(t *testing.T) {
	for i, tc := range diffCases {
		t.Run(tc.name, func(t *testing.T) {
			x, dy, _ := diffLayer(t, int64(200+i), tc.p)
			// Quantize the operands and recompute the FP64 reference from the
			// quantized values, so the bound measures algorithm error rather
			// than input quantization.
			xh, dyh := x.ToHalf(), dy.ToHalf()
			ref := conv.BackwardFilterDirect64(tc.p,
				xh.ToFloat32().ToFloat64(), dyh.ToFloat32().ToFloat64())
			bound := diffKappa(tc.p) * accLen(tc.p) * diffEps16

			for _, z := range tc.segs {
				z := z
				t.Run(fmt.Sprintf("Z%d", z), func(t *testing.T) {
					opts := []PlanOption{}
					if z > 0 {
						opts = append(opts, WithSegments(z))
					}
					got, err := BackwardFilterHalf(tc.p, xh, dyh, opts...)
					if err != nil {
						t.Fatalf("BackwardFilterHalf: %v", err)
					}
					if e := maxAbsErr64(got, ref); e > bound {
						t.Errorf("WinRS FP16 vs quantized FP64 reference: err %.3g exceeds bound %.3g", e, bound)
					}
				})
			}
		})
	}
}

// Strided shapes run through the decomposition path (FP32 only on the
// serving and library surface), against the strided FP64 direct reference.
func TestDifferentialStrided(t *testing.T) {
	cases := []struct {
		name string
		p    StridedParams
	}{
		{"3x3_s2", StridedParams{N: 1, IH: 13, IW: 13, FH: 3, FW: 3, IC: 2, OC: 3, SH: 2, SW: 2}},
		{"3x3_s2_pad1", StridedParams{N: 2, IH: 12, IW: 12, FH: 3, FW: 3, IC: 2, OC: 2, PH: 1, PW: 1, SH: 2, SW: 2}},
		{"5x5_s3", StridedParams{N: 1, IH: 17, IW: 19, FH: 5, FW: 5, IC: 2, OC: 2, SH: 3, SW: 3}},
		{"3x3_s2x1", StridedParams{N: 1, IH: 11, IW: 14, FH: 3, FW: 3, IC: 3, OC: 2, SH: 2, SW: 1}},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(300 + i)))
			x := NewTensor(tc.p.XShape())
			dy := NewTensor(tc.p.DYShape())
			x.FillUniform(rng, 0, 1)
			dy.FillUniform(rng, 0, 1)
			ref := conv.BackwardFilterStridedDirect64(tc.p, x.ToFloat64(), dy.ToFloat64())

			got, err := BackwardFilterStrided(tc.p, x, dy)
			if err != nil {
				t.Fatalf("BackwardFilterStrided: %v", err)
			}
			bound := diffKappa(Params{FW: tc.p.FW}) * float64(tc.p.N*tc.p.OH()*tc.p.OW()) * diffEps32
			if e := maxAbsErr64(got, ref); e > bound {
				t.Errorf("strided WinRS vs FP64 reference: err %.3g exceeds bound %.3g", e, bound)
			}
		})
	}
}
